package netsim

import (
	"testing"
	"time"
)

func smallSwitch(ports int) *Network {
	cfg := GigabitSwitch(ports)
	return New(cfg)
}

func TestTransferBasics(t *testing.T) {
	n := smallSwitch(4)
	start, end := n.Transfer(0, 1, 125e6/10, 0) // 1/10 s of wire time at peak
	if start != 0 {
		t.Errorf("start = %v", start)
	}
	// 12.5 MB at 125 MB/s * 0.85 ≈ 117.6 ms, plus latency.
	if end < 100*time.Millisecond || end > 130*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	if n.Stats.Transfers != 1 || n.Stats.Bytes != 125e5 {
		t.Errorf("stats = %+v", n.Stats)
	}
}

func TestThirdNodeInterruption(t *testing.T) {
	// The paper's observation (1): a third node sending to a busy node
	// breaks the smooth transfer. The interrupting transfer must wait
	// and pay the penalty.
	n := smallSwitch(4)
	_, end01 := n.Transfer(0, 1, 1<<20, 0)
	start21, end21 := n.Transfer(2, 1, 1<<20, 0) // interrupts port 1
	if start21 != end01 {
		t.Errorf("interrupting transfer started at %v, want %v", start21, end01)
	}
	plain := end01 // duration of an uncontended identical transfer
	dur21 := end21 - start21
	if dur21 <= plain {
		t.Errorf("interrupted transfer (%v) should cost more than clean one (%v)", dur21, plain)
	}
	if n.Stats.Interruptions != 1 {
		t.Errorf("interruptions = %d", n.Stats.Interruptions)
	}
}

func TestMoreNeighborsCostMore(t *testing.T) {
	// The paper's observation (2): the same total volume split across
	// more neighbors takes longer, because of per-message latency.
	const total = 1 << 20
	one := smallSwitch(8)
	_, endOne := one.Transfer(0, 1, total, 0)

	four := smallSwitch(8)
	var at time.Duration
	for i := 1; i <= 4; i++ {
		_, at = four.Transfer(0, i, total/4, at)
	}
	if at <= endOne {
		t.Errorf("4 messages (%v) should cost more than 1 message (%v)", at, endOne)
	}
}

func TestTransferQueuesOnBusySource(t *testing.T) {
	n := smallSwitch(4)
	_, end := n.Transfer(0, 1, 1<<20, 0)
	start2, _ := n.Transfer(0, 2, 1<<20, 0) // same source busy
	if start2 != end {
		t.Errorf("second transfer from busy source started at %v, want %v", start2, end)
	}
}

func TestStepTimesDisjointPairs(t *testing.T) {
	n := smallSwitch(8)
	ready := make([]time.Duration, 8)
	pairs := []Exchange{{0, 1, 1 << 20}, {2, 3, 1 << 20}, {4, 5, 1 << 20}}
	done := n.StepTimes(pairs, ready)
	// Concurrent disjoint pairs on a non-blocking switch finish at the
	// same time.
	if done[0] != done[2] || done[2] != done[4] {
		t.Errorf("concurrent pairs should finish together: %v %v %v", done[0], done[2], done[4])
	}
	// Nodes not in any pair are untouched.
	if done[6] != 0 || done[7] != 0 {
		t.Errorf("idle nodes moved: %v %v", done[6], done[7])
	}
}

func TestStepTimesRejectsOverlappingPairs(t *testing.T) {
	n := smallSwitch(4)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping pairs should panic")
		}
	}()
	n.StepTimes([]Exchange{{0, 1, 10}, {1, 2, 10}}, make([]time.Duration, 4))
}

func TestStepTimesWaitsForBothPeers(t *testing.T) {
	n := smallSwitch(4)
	ready := []time.Duration{0, 50 * time.Millisecond, 0, 0}
	done := n.StepTimes([]Exchange{{0, 1, 1 << 10}}, ready)
	if done[0] < 50*time.Millisecond {
		t.Errorf("exchange should start when the later peer is ready: %v", done[0])
	}
}

func TestTrunkContention(t *testing.T) {
	// 28 ports on a 24-port non-blocking switch: exchanges crossing the
	// stacking trunk (exactly one endpoint >= 24) share its limited
	// bandwidth and are slower than on-switch exchanges; exchanges
	// between two stacked ports stay local to the second switch.
	cfg := GigabitSwitch(28)
	n := New(cfg)
	ready := make([]time.Duration, 28)
	pairs := []Exchange{
		{0, 1, 1 << 20},   // primary switch, local
		{24, 25, 1 << 20}, // both stacked: local to second switch
		{2, 26, 1 << 20},  // crosses the trunk
		{3, 27, 1 << 20},  // crosses the trunk
	}
	done := n.StepTimes(pairs, ready)
	if done[24] != done[0] {
		t.Errorf("stacked-local exchange (%v) should match on-switch (%v)", done[24], done[0])
	}
	if done[26] <= done[0] {
		t.Errorf("trunk exchange (%v) should be slower than local (%v)", done[26], done[0])
	}
	if done[26] != done[27] {
		t.Errorf("equal trunk exchanges should finish together: %v vs %v", done[26], done[27])
	}
	// Two crossing exchanges halve the per-direction trunk rate; the
	// slowdown vs a local flow is (link rate / (trunk/2)), here
	// 125/(14/2) ~ 17.9x.
	ratio := float64(done[26]) / float64(done[0])
	if ratio < 12 || ratio > 25 {
		t.Errorf("trunk slowdown ratio = %.2f, want ~18", ratio)
	}
}

func TestNoTrunkWhenAllPortsNonBlocking(t *testing.T) {
	cfg := GigabitSwitch(16) // 16 <= 24: everything on the primary switch
	n := New(cfg)
	ready := make([]time.Duration, 16)
	done := n.StepTimes([]Exchange{{0, 15, 1 << 20}}, ready)
	n2 := New(cfg)
	done2 := n2.StepTimes([]Exchange{{0, 1, 1 << 20}}, make([]time.Duration, 16))
	if done[15] != done2[1] {
		t.Errorf("port index must not matter below NonBlockingPorts: %v vs %v", done[15], done2[1])
	}
	if n.Stats.TrunkFlows != 0 {
		t.Errorf("unexpected trunk flows: %d", n.Stats.TrunkFlows)
	}
}

func TestReset(t *testing.T) {
	n := smallSwitch(4)
	n.Transfer(0, 1, 1<<20, 0)
	n.Reset()
	if n.Stats != (Stats{}) {
		t.Errorf("stats not cleared: %+v", n.Stats)
	}
	start, _ := n.Transfer(0, 1, 1<<10, 0)
	if start != 0 {
		t.Errorf("port state not cleared: start = %v", start)
	}
}

func TestInvalidTransfersPanic(t *testing.T) {
	n := smallSwitch(4)
	for _, c := range []struct{ src, dst int }{{0, 0}, {-1, 1}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("transfer %d->%d should panic", c.src, c.dst)
				}
			}()
			n.Transfer(c.src, c.dst, 1, 0)
		}()
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(nil) != 0 {
		t.Error("empty max should be 0")
	}
	ts := []time.Duration{3, 9, 1}
	if MaxTime(ts) != 9 {
		t.Errorf("max = %v", MaxTime(ts))
	}
}

// TestTransferTrunkCrossingTiming pins down the Transfer-level trunk
// arithmetic: a flow with exactly one endpoint behind the stacking
// trunk serializes at trunk rate, while flows local to either switch
// run at full link rate.
func TestTransferTrunkCrossingTiming(t *testing.T) {
	cfg := Config{
		Ports:            8,
		LinkBandwidth:    100e6,
		Efficiency:       1,
		MsgLatency:       time.Millisecond,
		NonBlockingPorts: 4,
		TrunkBandwidth:   10e6,
	}
	const bytes = 1_000_000
	wantLocal := time.Millisecond + 10*time.Millisecond  // 1 MB at 100 MB/s
	wantTrunk := time.Millisecond + 100*time.Millisecond // 1 MB at 10 MB/s

	n := New(cfg)
	if _, end := n.Transfer(0, 1, bytes, 0); end != wantLocal {
		t.Errorf("primary-switch transfer took %v, want %v", end, wantLocal)
	}
	if n.Stats.TrunkFlows != 0 {
		t.Errorf("local transfer counted %d trunk flows", n.Stats.TrunkFlows)
	}

	n = New(cfg)
	if _, end := n.Transfer(0, 5, bytes, 0); end != wantTrunk {
		t.Errorf("trunk-crossing transfer took %v, want %v", end, wantTrunk)
	}
	if n.Stats.TrunkFlows != 1 {
		t.Errorf("crossing transfer counted %d trunk flows, want 1", n.Stats.TrunkFlows)
	}

	// Two ports behind the trunk talk locally on the stacked switch.
	n = New(cfg)
	if _, end := n.Transfer(5, 6, bytes, 0); end != wantLocal {
		t.Errorf("stacked-switch local transfer took %v, want %v", end, wantLocal)
	}
}

// TestTransferTrunkCrossingBusyPort checks that a crossing transfer
// arriving at a busy trunk-side port queues behind it and pays the
// interruption penalty on top of the trunk serialization time.
func TestTransferTrunkCrossingBusyPort(t *testing.T) {
	cfg := Config{
		Ports:            8,
		LinkBandwidth:    100e6,
		Efficiency:       1,
		MsgLatency:       time.Millisecond,
		InterruptPenalty: 5 * time.Millisecond,
		NonBlockingPorts: 4,
		TrunkBandwidth:   10e6,
	}
	n := New(cfg)
	const bytes = 1_000_000
	_, firstEnd := n.Transfer(0, 5, bytes, 0)
	start, end := n.Transfer(1, 5, bytes, 0)
	if start != firstEnd {
		t.Errorf("second transfer started %v, want queued until %v", start, firstEnd)
	}
	wantDur := time.Millisecond + 100*time.Millisecond + 5*time.Millisecond
	if got := end - start; got != wantDur {
		t.Errorf("interrupted crossing transfer took %v, want %v", got, wantDur)
	}
	if n.Stats.Interruptions != 1 {
		t.Errorf("interruptions = %d, want 1", n.Stats.Interruptions)
	}
}

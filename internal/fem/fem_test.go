package fem

import (
	"math"
	"testing"

	"gpucluster/internal/mpi"
	"gpucluster/internal/sparse"
)

func TestMeshStructure(t *testing.T) {
	m := NewUnitSquareMesh(4)
	if len(m.Nodes) != 25 {
		t.Errorf("nodes = %d, want 25", len(m.Nodes))
	}
	if len(m.Tris) != 32 {
		t.Errorf("triangles = %d, want 32", len(m.Tris))
	}
	// Total area is 1.
	var area float64
	for _, tri := range m.Tris {
		area += triArea(m.Nodes[tri[0]], m.Nodes[tri[1]], m.Nodes[tri[2]])
	}
	if math.Abs(area-1) > 1e-12 {
		t.Errorf("total area = %v", area)
	}
	// Boundary census: 16 boundary nodes on a 5x5 grid.
	nb := 0
	for n := range m.Nodes {
		if m.Boundary(n) {
			nb++
		}
	}
	if nb != 16 {
		t.Errorf("boundary nodes = %d, want 16", nb)
	}
}

func TestStiffnessMatrixSymmetricPositive(t *testing.T) {
	f, _ := ManufacturedSolution()
	s := Assemble(NewUnitSquareMesh(6), f)
	a := s.A
	// Symmetry.
	get := func(r, c int) float32 {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.ColIdx[k] == c {
				return a.Val[k]
			}
		}
		return 0
	}
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			if math.Abs(float64(a.Val[k]-get(c, r))) > 1e-5 {
				t.Fatalf("asymmetric at (%d,%d): %v vs %v", r, c, a.Val[k], get(c, r))
			}
		}
	}
	// Positive diagonal (structured P1 Laplacian has 4 on the diagonal).
	for _, d := range a.Diagonal() {
		if d <= 0 {
			t.Fatal("non-positive diagonal")
		}
	}
}

func TestSolveManufacturedSolution(t *testing.T) {
	f, exact := ManufacturedSolution()
	s := Assemble(NewUnitSquareMesh(16), f)
	u, st := s.Solve(1e-8, 2000)
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	if err := s.MaxError(u, exact); err > 0.01 {
		t.Errorf("max error = %v, want < 0.01 on a 16x16 mesh", err)
	}
}

func TestConvergenceOrder(t *testing.T) {
	// P1 elements are second order: halving h quarters the error
	// (roughly; accept a factor of 3 to be robust to float32 assembly).
	f, exact := ManufacturedSolution()
	errAt := func(n int) float64 {
		s := Assemble(NewUnitSquareMesh(n), f)
		u, st := s.Solve(1e-9, 4000)
		if !st.Converged {
			t.Fatalf("mesh %d did not converge", n)
		}
		return s.MaxError(u, exact)
	}
	e8 := errAt(8)
	e16 := errAt(16)
	if ratio := e8 / e16; ratio < 3 {
		t.Errorf("convergence ratio %v too small (e8=%v e16=%v)", ratio, e8, e16)
	}
}

func TestDistributedFEMSolveMatchesSerial(t *testing.T) {
	// The assembled FEM system solved with the cluster's distributed CG
	// — the full Section 6 FEM-on-the-GPU-cluster path.
	f, exact := ManufacturedSolution()
	s := Assemble(NewUnitSquareMesh(12), f)
	const ranks = 4
	got := make([]float32, s.A.Rows)
	off, sz := sparse.RowPartition(s.A.Rows, ranks)
	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		d := sparse.NewDistMatrix(s.A, r, ranks)
		d.Setup(c)
		local, st := sparse.DistCG(c, d, s.B[off[r]:off[r]+sz[r]], 1e-8, 2000)
		if !st.Converged {
			t.Errorf("rank %d: not converged", r)
		}
		copy(got[off[r]:], local)
	})
	u := s.expand(got)
	if err := s.MaxError(u, exact); err > 0.02 {
		t.Errorf("distributed FEM error = %v", err)
	}
}

func TestInvalidMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUnitSquareMesh(0)
}

// Package fem assembles P1 (linear triangle) finite element systems for
// the Poisson problem -laplacian(u) = f on the unit square with
// homogeneous Dirichlet boundaries — the FEM workload Section 6 proposes
// for the GPU cluster. The assembled stiffness matrix is SPD and sparse;
// it is solved with the solvers of package sparse, including the
// distributed conjugate gradient whose matrix and vector decomposition
// follows Figure 15 of the paper.
package fem

import (
	"fmt"
	"math"

	"gpucluster/internal/sparse"
)

// Mesh is a structured triangulation of the unit square: (n+1)^2 nodes,
// 2*n^2 triangles (each grid cell split along its diagonal).
type Mesh struct {
	N     int // cells per side
	Nodes [][2]float64
	Tris  [][3]int
}

// NewUnitSquareMesh builds the structured triangulation.
func NewUnitSquareMesh(n int) *Mesh {
	if n < 1 {
		panic(fmt.Sprintf("fem: invalid mesh size %d", n))
	}
	m := &Mesh{N: n}
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			m.Nodes = append(m.Nodes, [2]float64{float64(i) / float64(n), float64(j) / float64(n)})
		}
	}
	id := func(i, j int) int { return j*(n+1) + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			m.Tris = append(m.Tris,
				[3]int{id(i, j), id(i+1, j), id(i, j+1)},
				[3]int{id(i+1, j), id(i+1, j+1), id(i, j+1)})
		}
	}
	return m
}

// Boundary reports whether a node lies on the square's boundary.
func (m *Mesh) Boundary(node int) bool {
	i := node % (m.N + 1)
	j := node / (m.N + 1)
	return i == 0 || i == m.N || j == 0 || j == m.N
}

// triArea returns the signed area of a triangle.
func triArea(a, b, c [2]float64) float64 {
	return 0.5 * ((b[0]-a[0])*(c[1]-a[1]) - (c[0]-a[0])*(b[1]-a[1]))
}

// System is the assembled linear system for interior nodes.
type System struct {
	Mesh *Mesh
	// A is the stiffness matrix over interior nodes.
	A *sparse.CSR
	// B is the load vector.
	B []float32
	// InteriorID maps global node -> interior unknown (-1 on boundary).
	InteriorID []int
	// Interior lists the global node of each unknown.
	Interior []int
}

// Assemble builds the stiffness matrix and load vector for the source
// term f, eliminating Dirichlet boundary nodes.
func Assemble(m *Mesh, f func(x, y float64) float64) *System {
	s := &System{Mesh: m, InteriorID: make([]int, len(m.Nodes))}
	for n := range m.Nodes {
		if m.Boundary(n) {
			s.InteriorID[n] = -1
		} else {
			s.InteriorID[n] = len(s.Interior)
			s.Interior = append(s.Interior, n)
		}
	}
	nUnk := len(s.Interior)
	if nUnk == 0 {
		panic("fem: mesh has no interior nodes; refine it")
	}
	s.B = make([]float32, nUnk)
	var tr []sparse.Triplet
	for _, t := range m.Tris {
		a, b, c := m.Nodes[t[0]], m.Nodes[t[1]], m.Nodes[t[2]]
		area := triArea(a, b, c)
		// Gradients of the P1 basis functions.
		grads := [3][2]float64{
			{(b[1] - c[1]) / (2 * area), (c[0] - b[0]) / (2 * area)},
			{(c[1] - a[1]) / (2 * area), (a[0] - c[0]) / (2 * area)},
			{(a[1] - b[1]) / (2 * area), (b[0] - a[0]) / (2 * area)},
		}
		for i := 0; i < 3; i++ {
			gi := s.InteriorID[t[i]]
			if gi < 0 {
				continue
			}
			for j := 0; j < 3; j++ {
				gj := s.InteriorID[t[j]]
				if gj < 0 {
					continue
				}
				k := area * (grads[i][0]*grads[j][0] + grads[i][1]*grads[j][1])
				tr = append(tr, sparse.Triplet{Row: gi, Col: gj, Val: float32(k)})
			}
			// Load: one-point quadrature at the centroid.
			cx := (a[0] + b[0] + c[0]) / 3
			cy := (a[1] + b[1] + c[1]) / 3
			s.B[gi] += float32(f(cx, cy) * area / 3)
		}
	}
	s.A = sparse.NewCSR(nUnk, nUnk, tr)
	return s
}

// Solve runs conjugate gradients on the assembled system and returns the
// full nodal solution (zeros on the boundary).
func (s *System) Solve(tol float64, maxIter int) ([]float64, sparse.SolveStats) {
	x, st := sparse.CG(s.A, s.B, tol, maxIter)
	return s.expand(x), st
}

// expand scatters interior unknowns to the full node set.
func (s *System) expand(x []float32) []float64 {
	u := make([]float64, len(s.Mesh.Nodes))
	for k, node := range s.Interior {
		u[node] = float64(x[k])
	}
	return u
}

// MaxError compares a nodal solution against an analytic field.
func (s *System) MaxError(u []float64, exact func(x, y float64) float64) float64 {
	var maxErr float64
	for n, p := range s.Mesh.Nodes {
		if e := math.Abs(u[n] - exact(p[0], p[1])); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// ManufacturedSolution returns the canonical test problem: the exact
// solution u = sin(pi x) sin(pi y) with source f = 2 pi^2 u.
func ManufacturedSolution() (f, exact func(x, y float64) float64) {
	exact = func(x, y float64) float64 {
		return math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
	}
	f = func(x, y float64) float64 {
		return 2 * math.Pi * math.Pi * exact(x, y)
	}
	return
}

// Package pde implements explicit finite-difference solvers on
// structured grids for the GPU cluster, the second class of computations
// Section 6 discusses. The 3D heat equation du/dt = alpha * laplacian(u)
// is advanced with explicit Euler steps; the cluster-parallel version
// decomposes the domain into slabs whose border values are mirrored into
// neighbor "proxy points" each step (Figure 14 of the paper), exchanged
// over package mpi. A GPU version runs the stencil as a fragment program
// per slice.
package pde

import (
	"fmt"
	"math"

	"gpucluster/internal/gpu"
	"gpucluster/internal/mpi"
	"gpucluster/internal/vecmath"
)

// Heat3D is an explicit heat-equation solver on an NX x NY x NZ grid
// with periodic boundaries and one ghost shell.
type Heat3D struct {
	NX, NY, NZ int
	// Alpha is the diffusivity; explicit 3D stability needs
	// alpha <= 1/6.
	Alpha float32
	u, un []float32
	sx    int
	sy    int
	steps int
}

// NewHeat3D creates a zero-initialized solver.
func NewHeat3D(nx, ny, nz int, alpha float32) *Heat3D {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("pde: invalid grid %dx%dx%d", nx, ny, nz))
	}
	if alpha <= 0 || alpha > 1.0/6.0+1e-6 {
		panic(fmt.Sprintf("pde: alpha %v violates explicit stability (0, 1/6]", alpha))
	}
	h := &Heat3D{NX: nx, NY: ny, NZ: nz, Alpha: alpha, sx: nx + 2, sy: ny + 2}
	n := (nx + 2) * (ny + 2) * (nz + 2)
	h.u = make([]float32, n)
	h.un = make([]float32, n)
	return h
}

// Idx returns the padded index of (x, y, z); ghost range [-1, N] allowed.
func (h *Heat3D) Idx(x, y, z int) int { return ((z+1)*h.sy+(y+1))*h.sx + (x + 1) }

// Set assigns u(x, y, z).
func (h *Heat3D) Set(x, y, z int, v float32) { h.u[h.Idx(x, y, z)] = v }

// At reads u(x, y, z).
func (h *Heat3D) At(x, y, z int) float32 { return h.u[h.Idx(x, y, z)] }

// Steps returns the completed step count.
func (h *Heat3D) Steps() int { return h.steps }

// fillGhostsPeriodic mirrors the periodic images into the ghost shell.
func (h *Heat3D) fillGhostsPeriodic() {
	for z := 0; z < h.NZ; z++ {
		for y := 0; y < h.NY; y++ {
			h.u[h.Idx(-1, y, z)] = h.u[h.Idx(h.NX-1, y, z)]
			h.u[h.Idx(h.NX, y, z)] = h.u[h.Idx(0, y, z)]
		}
	}
	for z := 0; z < h.NZ; z++ {
		for x := -1; x <= h.NX; x++ {
			h.u[h.Idx(x, -1, z)] = h.u[h.Idx(x, h.NY-1, z)]
			h.u[h.Idx(x, h.NY, z)] = h.u[h.Idx(x, 0, z)]
		}
	}
	for y := -1; y <= h.NY; y++ {
		for x := -1; x <= h.NX; x++ {
			h.u[h.Idx(x, y, -1)] = h.u[h.Idx(x, y, h.NZ-1)]
			h.u[h.Idx(x, y, h.NZ)] = h.u[h.Idx(x, y, 0)]
		}
	}
}

// stencil applies one explicit Euler update to the interior.
func (h *Heat3D) stencil() {
	a := h.Alpha
	for z := 0; z < h.NZ; z++ {
		for y := 0; y < h.NY; y++ {
			for x := 0; x < h.NX; x++ {
				c := h.Idx(x, y, z)
				lap := h.u[c-1] + h.u[c+1] +
					h.u[c-h.sx] + h.u[c+h.sx] +
					h.u[c-h.sx*h.sy] + h.u[c+h.sx*h.sy] - 6*h.u[c]
				h.un[c] = h.u[c] + a*lap
			}
		}
	}
	h.u, h.un = h.un, h.u
}

// Step advances one time step (serial reference).
func (h *Heat3D) Step() {
	h.fillGhostsPeriodic()
	h.stencil()
	h.steps++
}

// Total returns the heat content (conserved under periodic boundaries).
func (h *Heat3D) Total() float64 {
	var s float64
	for z := 0; z < h.NZ; z++ {
		for y := 0; y < h.NY; y++ {
			for x := 0; x < h.NX; x++ {
				s += float64(h.At(x, y, z))
			}
		}
	}
	return s
}

// ParallelHeat3D runs `steps` explicit updates of a grid initialized by
// init (global coordinates), decomposed into z slabs over `ranks`
// goroutine-nodes with proxy-plane exchange each step, and returns the
// gathered field (x-fastest).
func ParallelHeat3D(nx, ny, nz int, alpha float32, ranks, steps int,
	initVal func(x, y, z int) float32) []float32 {
	if nz%ranks != 0 {
		panic(fmt.Sprintf("pde: %d z-planes not divisible by %d ranks", nz, ranks))
	}
	slab := nz / ranks
	result := make([][]float32, ranks)

	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		// Local slab with its own ghost shell; x/y ghosts are periodic
		// locally, z ghosts come from neighbors (wrap decomposition).
		local := NewHeat3D(nx, ny, slab, alpha)
		for z := 0; z < slab; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					local.Set(x, y, z, initVal(x, y, r*slab+z))
				}
			}
		}
		up := (r - 1 + ranks) % ranks
		down := (r + 1) % ranks
		plane := func(z int) []float32 {
			// Full padded plane including x/y ghosts so corners are
			// consistent (the proxy points of Figure 14).
			out := make([]float32, local.sx*local.sy)
			for y := -1; y <= ny; y++ {
				for x := -1; x <= nx; x++ {
					out[(y+1)*local.sx+(x+1)] = local.u[local.Idx(x, y, z)]
				}
			}
			return out
		}
		setGhostPlane := func(z int, data []float32) {
			for y := -1; y <= ny; y++ {
				for x := -1; x <= nx; x++ {
					local.u[local.Idx(x, y, z)] = data[(y+1)*local.sx+(x+1)]
				}
			}
		}
		for s := 0; s < steps; s++ {
			// x/y periodic ghosts first (plane() then carries correct
			// corners), then z proxy exchange.
			local.fillGhostsPeriodic()
			if ranks > 1 {
				c.Send(up, 2*s, plane(0))
				c.Send(down, 2*s+1, plane(slab-1))
				setGhostPlane(slab, c.Recv(down, 2*s))
				setGhostPlane(-1, c.Recv(up, 2*s+1))
			}
			local.stencil()
		}
		out := make([]float32, nx*ny*slab)
		i := 0
		for z := 0; z < slab; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					out[i] = local.At(x, y, z)
					i++
				}
			}
		}
		result[r] = out
	})

	full := make([]float32, nx*ny*nz)
	for r, part := range result {
		copy(full[r*slab*nx*ny:], part)
	}
	return full
}

// GPUHeat2D advances a 2D heat equation on the simulated GPU, one render
// pass per step — the structured-grid explicit-method mapping Section 6
// describes. It exists alongside the 3D CPU/cluster solver to exercise
// the GPU path for PDEs.
type GPUHeat2D struct {
	W, H  int
	Alpha float32
	dev   *gpu.Device
	tex   *gpu.Texture2D
	pb    *gpu.PBuffer
}

// NewGPUHeat2D allocates the field texture.
func NewGPUHeat2D(dev *gpu.Device, w, h int, alpha float32) (*GPUHeat2D, error) {
	tex, err := dev.NewTexture2D("heat", w, h)
	if err != nil {
		return nil, err
	}
	pb, err := dev.NewPBuffer("heat-pb", w, h)
	if err != nil {
		tex.Free()
		return nil, err
	}
	return &GPUHeat2D{W: w, H: h, Alpha: alpha, dev: dev, tex: tex, pb: pb}, nil
}

// Upload sets the field from a row-major slice.
func (g *GPUHeat2D) Upload(u []float32) error {
	data := make([]float32, g.W*g.H*4)
	for i, v := range u {
		data[4*i] = v
	}
	return g.dev.Upload(g.tex, data)
}

// Download reads the field back.
func (g *GPUHeat2D) Download() ([]float32, error) {
	data, err := g.dev.Download(g.tex)
	if err != nil {
		return nil, err
	}
	out := make([]float32, g.W*g.H)
	for i := range out {
		out[i] = data[4*i]
	}
	return out, nil
}

// Step runs one explicit update pass (periodic boundaries).
func (g *GPUHeat2D) Step() error {
	a := g.Alpha
	return g.dev.RunAndCopy(gpu.Pass{
		Name:     "heat2d",
		Target:   g.pb,
		Textures: []gpu.Sampler{g.tex},
		Program: func(tex []gpu.Sampler, x, y int) vecmath.Vec4 {
			t := tex[0]
			u := t.FetchWrap(x, y)[0]
			lap := t.FetchWrap(x-1, y)[0] + t.FetchWrap(x+1, y)[0] +
				t.FetchWrap(x, y-1)[0] + t.FetchWrap(x, y+1)[0] - 4*u
			return vecmath.Vec4{u + a*lap, 0, 0, 1}
		},
	}, g.tex)
}

// DecayRate returns the analytic decay factor per step for the lowest
// sine mode of wavenumber k = 2*pi/n under diffusivity alpha (the value
// the validation tests compare against): u(t+1)/u(t) for the mode
// exp(i k x) is 1 - 2*alpha*(1 - cos k) per dimension.
func DecayRate(alpha float64, n int, dims int) float64 {
	k := 2 * math.Pi / float64(n)
	perDim := 2 * alpha * (1 - math.Cos(k))
	return 1 - float64(dims)*perDim
}

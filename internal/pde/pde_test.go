package pde

import (
	"math"
	"testing"

	"gpucluster/internal/gpu"
)

func TestHeatConservesTotal(t *testing.T) {
	h := NewHeat3D(12, 12, 12, 1.0/8)
	h.Set(6, 6, 6, 100)
	t0 := h.Total()
	for s := 0; s < 50; s++ {
		h.Step()
	}
	t1 := h.Total()
	if math.Abs(t1-t0) > 1e-2 {
		t.Errorf("heat content drifted: %v -> %v", t0, t1)
	}
	if h.Steps() != 50 {
		t.Errorf("steps = %d", h.Steps())
	}
}

func TestHeatSineModeDecay(t *testing.T) {
	// u0 = sin(k x): after s steps the amplitude is decayRate^s; measure
	// and compare with the discrete dispersion relation.
	const N = 32
	alpha := float32(0.15)
	h := NewHeat3D(N, 4, 4, alpha)
	k := 2 * math.Pi / N
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < N; x++ {
				h.Set(x, y, z, float32(math.Sin(k*float64(x))))
			}
		}
	}
	amp := func() float64 {
		var s float64
		for x := 0; x < N; x++ {
			s += float64(h.At(x, 2, 2)) * math.Sin(k*float64(x))
		}
		return 2 * s / N
	}
	a0 := amp()
	const steps = 60
	for s := 0; s < steps; s++ {
		h.Step()
	}
	a1 := amp()
	want := math.Pow(DecayRate(float64(alpha), N, 1), steps)
	if got := a1 / a0; math.Abs(got-want)/want > 0.01 {
		t.Errorf("decay factor = %v, want %v", got, want)
	}
}

func TestHeatMaxPrinciple(t *testing.T) {
	// Explicit stable diffusion never exceeds the initial extrema.
	h := NewHeat3D(10, 10, 10, 1.0/6)
	h.Set(5, 5, 5, 1)
	for s := 0; s < 30; s++ {
		h.Step()
		for z := 0; z < 10; z++ {
			for y := 0; y < 10; y++ {
				for x := 0; x < 10; x++ {
					v := h.At(x, y, z)
					if v < -1e-6 || v > 1 {
						t.Fatalf("max principle violated at step %d: u(%d,%d,%d)=%v", s, x, y, z, v)
					}
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const nx, ny, nz = 12, 10, 12
	alpha := float32(0.12)
	initVal := func(x, y, z int) float32 {
		return float32(math.Sin(2*math.Pi*float64(x)/nx) * math.Cos(2*math.Pi*float64(z)/nz))
	}
	serial := NewHeat3D(nx, ny, nz, alpha)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				serial.Set(x, y, z, initVal(x, y, z))
			}
		}
	}
	const steps = 25
	for s := 0; s < steps; s++ {
		serial.Step()
	}
	for _, ranks := range []int{1, 2, 3, 4, 6} {
		got := ParallelHeat3D(nx, ny, nz, alpha, ranks, steps, initVal)
		i := 0
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					if got[i] != serial.At(x, y, z) {
						t.Fatalf("%d ranks: mismatch at (%d,%d,%d): %v != %v",
							ranks, x, y, z, got[i], serial.At(x, y, z))
					}
					i++
				}
			}
		}
	}
}

func TestGPUHeat2DMatchesAnalytic(t *testing.T) {
	const N = 32
	alpha := float32(0.2)
	dev := gpu.New(gpu.Config{TextureMemory: 16 << 20, Workers: 4})
	g, err := NewGPUHeat2D(dev, N, N, alpha)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float32, N*N)
	k := 2 * math.Pi / N
	for y := 0; y < N; y++ {
		for x := 0; x < N; x++ {
			u[y*N+x] = float32(math.Sin(k * float64(x)))
		}
	}
	if err := g.Upload(u); err != nil {
		t.Fatal(err)
	}
	const steps = 40
	for s := 0; s < steps; s++ {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := g.Download()
	if err != nil {
		t.Fatal(err)
	}
	var a float64
	for x := 0; x < N; x++ {
		a += float64(got[16*N+x]) * math.Sin(k*float64(x))
	}
	a = 2 * a / N
	want := math.Pow(DecayRate(float64(alpha), N, 1), steps)
	if math.Abs(a-want)/want > 0.01 {
		t.Errorf("GPU decay = %v, want %v", a, want)
	}
}

func TestInvalidParameters(t *testing.T) {
	for _, f := range []func(){
		func() { NewHeat3D(0, 4, 4, 0.1) },
		func() { NewHeat3D(4, 4, 4, 0.5) }, // unstable
		func() { NewHeat3D(4, 4, 4, -0.1) },
		func() { ParallelHeat3D(4, 4, 10, 0.1, 3, 1, func(x, y, z int) float32 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

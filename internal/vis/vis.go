// Package vis renders the dispersion simulation outputs of Section 5:
// streamline visualizations of the velocity field (Figure 12, colored
// blue for horizontal flow and white where the flow acquires a vertical
// component passing over buildings) and orthographic volume projections
// of the contaminant density (Figure 13). Images are written as binary
// PPM (P6), which needs no dependencies and every viewer reads.
package vis

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"gpucluster/internal/vecmath"
)

// VelocityField samples a gathered velocity field with trilinear
// interpolation.
type VelocityField struct {
	NX, NY, NZ int
	V          []vecmath.Vec3 // x-fastest
}

// At returns the trilinearly interpolated velocity at a continuous
// position (clamped to the domain).
func (f *VelocityField) At(p vecmath.Vec3) vecmath.Vec3 {
	cl := func(v float32, n int) (int, float32) {
		if v < 0 {
			v = 0
		}
		if v > float32(n-1) {
			v = float32(n - 1)
		}
		i := int(v)
		if i >= n-1 {
			i = n - 2
			if i < 0 {
				i = 0
			}
		}
		return i, v - float32(i)
	}
	ix, fx := cl(p[0], f.NX)
	iy, fy := cl(p[1], f.NY)
	iz, fz := cl(p[2], f.NZ)
	if f.NX == 1 {
		fx = 0
	}
	if f.NY == 1 {
		fy = 0
	}
	if f.NZ == 1 {
		fz = 0
	}
	at := func(x, y, z int) vecmath.Vec3 {
		if x >= f.NX {
			x = f.NX - 1
		}
		if y >= f.NY {
			y = f.NY - 1
		}
		if z >= f.NZ {
			z = f.NZ - 1
		}
		return f.V[(z*f.NY+y)*f.NX+x]
	}
	c00 := at(ix, iy, iz).Lerp(at(ix+1, iy, iz), fx)
	c10 := at(ix, iy+1, iz).Lerp(at(ix+1, iy+1, iz), fx)
	c01 := at(ix, iy, iz+1).Lerp(at(ix+1, iy, iz+1), fx)
	c11 := at(ix, iy+1, iz+1).Lerp(at(ix+1, iy+1, iz+1), fx)
	return c00.Lerp(c10, fy).Lerp(c01.Lerp(c11, fy), fz)
}

// Streamline integrates a path through the field from start using
// second-order Runge-Kutta (midpoint) steps of size h, stopping after
// maxSteps or when the speed vanishes or the path leaves the domain.
func (f *VelocityField) Streamline(start vecmath.Vec3, h float32, maxSteps int) []vecmath.Vec3 {
	path := []vecmath.Vec3{start}
	p := start
	for s := 0; s < maxSteps; s++ {
		v1 := f.At(p)
		if v1.Norm() < 1e-8 {
			break
		}
		mid := p.Add(v1.Scale(h / 2 / v1.Norm()))
		v2 := f.At(mid)
		if v2.Norm() < 1e-8 {
			break
		}
		p = p.Add(v2.Scale(h / v2.Norm()))
		if p[0] < 0 || p[0] > float32(f.NX-1) ||
			p[1] < 0 || p[1] > float32(f.NY-1) ||
			p[2] < 0 || p[2] > float32(f.NZ-1) {
			break
		}
		path = append(path, p)
	}
	return path
}

// RGB is an 8-bit color.
type RGB struct{ R, G, B uint8 }

// Image is a simple raster.
type Image struct {
	W, H int
	Pix  []RGB
}

// NewImage creates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// Set writes a pixel, ignoring out-of-range coordinates.
func (im *Image) Set(x, y int, c RGB) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = c
}

// At reads a pixel.
func (im *Image) At(x, y int) RGB { return im.Pix[y*im.W+x] }

// WritePPM encodes the image as binary PPM (P6).
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, p := range im.Pix {
		if _, err := bw.Write([]byte{p.R, p.G, p.B}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// line draws with simple DDA.
func (im *Image) line(x0, y0, x1, y1 float32, c RGB) {
	dx, dy := x1-x0, y1-y0
	steps := int(math.Max(math.Abs(float64(dx)), math.Abs(float64(dy)))) + 1
	for i := 0; i <= steps; i++ {
		t := float32(i) / float32(steps)
		im.Set(int(x0+t*dx+0.5), int(y0+t*dy+0.5), c)
	}
}

// StreamlineColor implements the paper's Figure 12 coloring: blue where
// the velocity is approximately horizontal, blending to white as the
// vertical component grows (flow passing over buildings).
func StreamlineColor(v vecmath.Vec3) RGB {
	n := v.Norm()
	if n == 0 {
		return RGB{60, 60, 200}
	}
	vert := float32(math.Abs(float64(v[2]))) / n
	w := vecmath.Clamp(vert*3, 0, 1) // emphasize vertical motion
	r := uint8(60 + w*195)
	g := uint8(60 + w*195)
	return RGB{r, g, 255}
}

// RenderStreamlinesTopDown draws streamlines projected onto the ground
// plane over a building-footprint background, scaled to a w x h image.
func RenderStreamlinesTopDown(f *VelocityField, solid func(x, y, z int) bool,
	seeds []vecmath.Vec3, w, h int) *Image {
	im := NewImage(w, h)
	sx := float32(w) / float32(f.NX)
	sy := float32(h) / float32(f.NY)
	// Background: dark gray buildings on black streets.
	if solid != nil {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				gx := int(float32(x) / sx)
				gy := int(float32(y) / sy)
				if solid(gx, gy, 0) {
					im.Set(x, y, RGB{70, 70, 70})
				}
			}
		}
	}
	for _, s := range seeds {
		path := f.Streamline(s, 0.5, 4*f.NX)
		for i := 1; i < len(path); i++ {
			c := StreamlineColor(f.At(path[i]))
			im.line(path[i-1][0]*sx, path[i-1][1]*sy, path[i][0]*sx, path[i][1]*sy, c)
		}
		// Seed markers in red, as in Figure 12.
		im.Set(int(s[0]*sx), int(s[1]*sy), RGB{255, 40, 40})
	}
	return im
}

// RenderVolumeTopDown projects a density volume onto the ground plane
// (emission-only orthographic ray marching along z) in an orange
// contaminant palette over the footprint background, Figure 13 style.
func RenderVolumeTopDown(nx, ny, nz int, density []float32,
	solid func(x, y, z int) bool, w, h int) *Image {
	im := NewImage(w, h)
	var maxCol float32
	cols := make([]float32, nx*ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			var acc float32
			for z := 0; z < nz; z++ {
				acc += density[(z*ny+y)*nx+x]
			}
			cols[y*nx+x] = acc
			if acc > maxCol {
				maxCol = acc
			}
		}
	}
	if maxCol == 0 {
		maxCol = 1
	}
	sx := float32(w) / float32(nx)
	sy := float32(h) / float32(ny)
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			gx := int(float32(px) / sx)
			gy := int(float32(py) / sy)
			if gx >= nx {
				gx = nx - 1
			}
			if gy >= ny {
				gy = ny - 1
			}
			var base RGB
			if solid != nil && solid(gx, gy, 0) {
				base = RGB{70, 70, 70}
			}
			d := cols[gy*nx+gx] / maxCol
			if d > 0 {
				// log-ish ramp for visibility of thin plumes
				v := vecmath.Clamp(float32(math.Pow(float64(d), 0.4)), 0, 1)
				base = RGB{
					R: uint8(float32(base.R)*(1-v) + 255*v),
					G: uint8(float32(base.G)*(1-v) + 140*v),
					B: uint8(float32(base.B) * (1 - v)),
				}
			}
			im.Set(px, py, base)
		}
	}
	return im
}

package vis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpucluster/internal/vecmath"
)

func uniformField(nx, ny, nz int, v vecmath.Vec3) *VelocityField {
	f := &VelocityField{NX: nx, NY: ny, NZ: nz, V: make([]vecmath.Vec3, nx*ny*nz)}
	for i := range f.V {
		f.V[i] = v
	}
	return f
}

func TestTrilinearReproducesLinearField(t *testing.T) {
	// u_x = x + 2y + 3z is reproduced exactly by trilinear interpolation.
	f := &VelocityField{NX: 8, NY: 8, NZ: 8, V: make([]vecmath.Vec3, 512)}
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				f.V[(z*8+y)*8+x] = vecmath.Vec3{float32(x) + 2*float32(y) + 3*float32(z), 0, 0}
			}
		}
	}
	probes := []vecmath.Vec3{{1.5, 2.25, 3.75}, {0, 0, 0}, {6.9, 6.9, 6.9}, {3.1, 0.4, 5.5}}
	for _, p := range probes {
		want := p[0] + 2*p[1] + 3*p[2]
		got := f.At(p)[0]
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Errorf("At(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestTrilinearClampsOutside(t *testing.T) {
	f := uniformField(4, 4, 4, vecmath.Vec3{1, 0, 0})
	if got := f.At(vecmath.Vec3{-5, -5, -5}); got != (vecmath.Vec3{1, 0, 0}) {
		t.Errorf("clamped sample = %v", got)
	}
	if got := f.At(vecmath.Vec3{99, 99, 99}); got != (vecmath.Vec3{1, 0, 0}) {
		t.Errorf("clamped sample = %v", got)
	}
}

func TestStreamlineStraightInUniformFlow(t *testing.T) {
	f := uniformField(32, 8, 8, vecmath.Vec3{0.1, 0, 0})
	path := f.Streamline(vecmath.Vec3{1, 4, 4}, 0.5, 200)
	if len(path) < 10 {
		t.Fatalf("path too short: %d", len(path))
	}
	last := path[len(path)-1]
	if last[0] <= 25 {
		t.Errorf("streamline should cross the domain, ended at %v", last)
	}
	for _, p := range path {
		if math.Abs(float64(p[1]-4)) > 1e-3 || math.Abs(float64(p[2]-4)) > 1e-3 {
			t.Fatalf("streamline deviated in uniform flow: %v", p)
		}
	}
}

func TestStreamlineStopsAtStagnation(t *testing.T) {
	f := uniformField(8, 8, 8, vecmath.Vec3{})
	path := f.Streamline(vecmath.Vec3{4, 4, 4}, 0.5, 100)
	if len(path) != 1 {
		t.Errorf("streamline in still fluid should not move: %d points", len(path))
	}
}

func TestStreamlineColor(t *testing.T) {
	horizontal := StreamlineColor(vecmath.Vec3{0.1, 0.05, 0})
	vertical := StreamlineColor(vecmath.Vec3{0, 0, 0.1})
	if horizontal.R >= 128 {
		t.Errorf("horizontal flow should be blue-ish, got %+v", horizontal)
	}
	if vertical.R != 255 || vertical.G != 255 {
		t.Errorf("vertical flow should be white, got %+v", vertical)
	}
	if horizontal.B != 255 || vertical.B != 255 {
		t.Error("blue channel anchors the palette")
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(3, 2)
	im.Set(0, 0, RGB{255, 0, 0})
	im.Set(2, 1, RGB{0, 0, 255})
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "P6\n3 2\n255\n") {
		t.Fatalf("bad header: %q", s[:12])
	}
	if buf.Len() != len("P6\n3 2\n255\n")+3*2*3 {
		t.Errorf("payload length = %d", buf.Len())
	}
	// First pixel red.
	body := buf.Bytes()[len("P6\n3 2\n255\n"):]
	if body[0] != 255 || body[1] != 0 || body[2] != 0 {
		t.Errorf("first pixel = %v", body[:3])
	}
}

func TestSetIgnoresOutOfRange(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(-1, 0, RGB{1, 1, 1})
	im.Set(5, 5, RGB{1, 1, 1})
	for _, p := range im.Pix {
		if p != (RGB{}) {
			t.Fatal("out-of-range set leaked")
		}
	}
}

func TestRenderStreamlinesProducesInk(t *testing.T) {
	f := uniformField(16, 16, 4, vecmath.Vec3{0.1, 0.02, 0})
	solid := func(x, y, z int) bool { return x >= 6 && x < 8 && y >= 6 && y < 8 }
	seeds := []vecmath.Vec3{{1, 4, 1}, {1, 8, 1}, {1, 12, 1}}
	im := RenderStreamlinesTopDown(f, solid, seeds, 64, 64)
	var colored, gray int
	for _, p := range im.Pix {
		switch {
		case p.B == 255:
			colored++
		case p.R == 70 && p.G == 70:
			gray++
		}
	}
	if colored < 50 {
		t.Errorf("expected streamline pixels, got %d", colored)
	}
	if gray == 0 {
		t.Error("expected building footprint pixels")
	}
}

func TestRenderVolumeHighlightsPlume(t *testing.T) {
	const nx, ny, nz = 16, 16, 4
	den := make([]float32, nx*ny*nz)
	// Plume column at (10, 5).
	for z := 0; z < nz; z++ {
		den[(z*ny+5)*nx+10] = 3
	}
	im := RenderVolumeTopDown(nx, ny, nz, den, nil, 32, 32)
	// The plume pixel block is bright orange; a far corner stays black.
	p := im.At(21, 11) // maps to grid (10, 5)
	if p.R < 200 || p.B != 0 {
		t.Errorf("plume pixel = %+v, want orange", p)
	}
	if c := im.At(2, 25); c != (RGB{}) {
		t.Errorf("empty region pixel = %+v, want black", c)
	}
}

func TestRenderVolumeEmptyDensity(t *testing.T) {
	im := RenderVolumeTopDown(4, 4, 2, make([]float32, 32), nil, 8, 8)
	for _, p := range im.Pix {
		if p != (RGB{}) {
			t.Fatal("empty volume should render black")
		}
	}
}

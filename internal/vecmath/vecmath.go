// Package vecmath provides the small fixed-size float32 vector and matrix
// types used throughout the GPU simulator and the LBM solvers.
//
// Vec4 models the 4-wide SIMD register of a 2003-era fragment processor
// (one RGBA texel / one homogeneous coordinate); Vec3 is the spatial
// vector used by the flow solvers. All operations are value-based and
// allocation-free so they can run in inner loops.
package vecmath

import "math"

// Vec4 is a 4-component float32 vector, the native register width of the
// simulated GPU fragment processor (RGBA color channels).
type Vec4 [4]float32

// Vec3 is a 3-component float32 spatial vector.
type Vec3 [3]float32

// Add returns v + w componentwise.
func (v Vec4) Add(w Vec4) Vec4 {
	return Vec4{v[0] + w[0], v[1] + w[1], v[2] + w[2], v[3] + w[3]}
}

// Sub returns v - w componentwise.
func (v Vec4) Sub(w Vec4) Vec4 {
	return Vec4{v[0] - w[0], v[1] - w[1], v[2] - w[2], v[3] - w[3]}
}

// Mul returns the componentwise (Hadamard) product v * w.
func (v Vec4) Mul(w Vec4) Vec4 {
	return Vec4{v[0] * w[0], v[1] * w[1], v[2] * w[2], v[3] * w[3]}
}

// Scale returns s*v.
func (v Vec4) Scale(s float32) Vec4 {
	return Vec4{v[0] * s, v[1] * s, v[2] * s, v[3] * s}
}

// Dot returns the 4-component dot product.
func (v Vec4) Dot(w Vec4) float32 {
	return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] + v[3]*w[3]
}

// MulAdd returns v + s*w, the fused multiply-add idiom of fragment programs.
func (v Vec4) MulAdd(s float32, w Vec4) Vec4 {
	return Vec4{v[0] + s*w[0], v[1] + s*w[1], v[2] + s*w[2], v[3] + s*w[3]}
}

// Sum returns the horizontal sum of the components.
func (v Vec4) Sum() float32 { return v[0] + v[1] + v[2] + v[3] }

// Add returns v + w componentwise.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w componentwise.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s*v.
func (v Vec3) Scale(s float32) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float32 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float32 {
	return float32(math.Sqrt(float64(v.Dot(v))))
}

// Normalize returns v scaled to unit length; the zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Lerp returns (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float32) Vec3 {
	return Vec3{
		v[0] + t*(w[0]-v[0]),
		v[1] + t*(w[1]-v[1]),
		v[2] + t*(w[2]-v[2]),
	}
}

// Clamp returns v with each component clamped to [lo, hi].
func Clamp(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-5*(1+math.Abs(float64(a))+math.Abs(float64(b)))
}

func TestVec4Add(t *testing.T) {
	got := Vec4{1, 2, 3, 4}.Add(Vec4{10, 20, 30, 40})
	want := Vec4{11, 22, 33, 44}
	if got != want {
		t.Fatalf("Add = %v, want %v", got, want)
	}
}

func TestVec4Sub(t *testing.T) {
	got := Vec4{1, 2, 3, 4}.Sub(Vec4{4, 3, 2, 1})
	want := Vec4{-3, -1, 1, 3}
	if got != want {
		t.Fatalf("Sub = %v, want %v", got, want)
	}
}

func TestVec4MulScaleDot(t *testing.T) {
	v := Vec4{1, 2, 3, 4}
	if got := v.Mul(Vec4{2, 2, 2, 2}); got != v.Scale(2) {
		t.Fatalf("Mul by twos %v != Scale(2) %v", got, v.Scale(2))
	}
	if got := v.Dot(Vec4{1, 1, 1, 1}); got != 10 {
		t.Fatalf("Dot = %v, want 10", got)
	}
	if got := v.Sum(); got != 10 {
		t.Fatalf("Sum = %v, want 10", got)
	}
}

func TestVec4MulAdd(t *testing.T) {
	v := Vec4{1, 1, 1, 1}
	got := v.MulAdd(3, Vec4{1, 2, 3, 4})
	want := Vec4{4, 7, 10, 13}
	if got != want {
		t.Fatalf("MulAdd = %v, want %v", got, want)
	}
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	u := v.Normalize()
	if !almostEq(u.Norm(), 1) {
		t.Fatalf("Normalize norm = %v, want 1", u.Norm())
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Fatalf("Normalize zero = %v, want zero", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.Cross(y); got != (Vec3{0, 0, 1}) {
		t.Fatalf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != (Vec3{0, 0, -1}) {
		t.Fatalf("y cross x = %v, want -z", got)
	}
}

func TestVec3Lerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 8}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 4}) {
		t.Fatalf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp t=0 = %v, want a", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp t=1 = %v, want b", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float32 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

// Property: addition commutes and Dot is symmetric.
func TestVec4Properties(t *testing.T) {
	commute := func(a, b Vec4) bool {
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(commute, nil); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	dotSym := func(a, b Vec4) bool {
		d1, d2 := a.Dot(b), b.Dot(a)
		return d1 == d2 || (math.IsNaN(float64(d1)) && math.IsNaN(float64(d2)))
	}
	if err := quick.Check(dotSym, nil); err != nil {
		t.Errorf("Dot not symmetric: %v", err)
	}
}

// Property: cross product is orthogonal to both operands (for finite
// inputs of moderate magnitude).
func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(a, b Vec3) bool {
		for i := range a {
			if !finite(a[i]) || !finite(b[i]) || abs32(a[i]) > 1e6 || abs32(b[i]) > 1e6 {
				return true // skip pathological inputs
			}
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return c == Vec3{}
		}
		return abs32(c.Dot(a))/scale < 1e-4 && abs32(c.Dot(b))/scale < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("cross not orthogonal: %v", err)
	}
}

func finite(x float32) bool {
	f := float64(x)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

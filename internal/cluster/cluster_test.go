package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"gpucluster/internal/lbm"
	"gpucluster/internal/sched"
	"gpucluster/internal/vecmath"
)

func TestDecompose(t *testing.T) {
	cases := []struct {
		g, p      int
		wantSizes []int
	}{
		{10, 2, []int{5, 5}},
		{10, 3, []int{4, 3, 3}},
		{7, 4, []int{2, 2, 2, 1}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		off, sz := Decompose(c.g, c.p)
		total := 0
		for i := range sz {
			if sz[i] != c.wantSizes[i] {
				t.Errorf("Decompose(%d,%d) sizes = %v, want %v", c.g, c.p, sz, c.wantSizes)
				break
			}
			if off[i] != total {
				t.Errorf("Decompose(%d,%d) offset[%d] = %d, want %d", c.g, c.p, i, off[i], total)
			}
			total += sz[i]
		}
		if total != c.g {
			t.Errorf("Decompose(%d,%d) covers %d cells", c.g, c.p, total)
		}
	}
}

func TestDecomposeProperty(t *testing.T) {
	f := func(g, p uint8) bool {
		gi := int(g%64) + 1
		pi := int(p%8) + 1
		if pi > gi {
			pi = gi
		}
		off, sz := Decompose(gi, pi)
		total := 0
		for i := range sz {
			if sz[i] <= 0 || off[i] != total {
				return false
			}
			total += sz[i]
		}
		return total == gi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// serialReference builds a single lbm.Lattice equivalent to cfg and runs
// it the given number of steps.
func serialReference(cfg Config, steps int) *lbm.Lattice {
	l := lbm.New(cfg.Global[0], cfg.Global[1], cfg.Global[2], cfg.Tau)
	l.Faces = cfg.Faces
	l.Force = cfg.Force
	if cfg.UseMRT {
		l.Collision = lbm.NewMRT(cfg.Tau)
	}
	if cfg.Geometry != nil {
		for z := 0; z < l.NZ; z++ {
			for y := 0; y < l.NY; y++ {
				for x := 0; x < l.NX; x++ {
					if cfg.Geometry(x, y, z) {
						l.SetSolid(x, y, z, true)
					}
				}
			}
		}
	}
	l.Init(1, vecmath.Vec3{})
	if cfg.InitState != nil {
		ApplyInitState(l, 0, 0, 0, cfg.InitState)
	}
	for s := 0; s < steps; s++ {
		l.Step()
	}
	return l
}

// assertMatchesSerial runs cfg on the given grids and compares the
// gathered fields against the serial reference bit-for-bit.
func assertMatchesSerial(t *testing.T, cfg Config, steps int, grids []sched.NodeGrid) {
	t.Helper()
	ref := serialReference(cfg, steps)
	gx, gy := cfg.Global[0], cfg.Global[1]
	for _, g := range grids {
		cfg.Grid = g
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("grid %v: %v", g, err)
		}
		sim.Run(steps)
		den := sim.GatherDensity()
		vel := sim.GatherVelocity()
		for z := 0; z < cfg.Global[2]; z++ {
			for y := 0; y < gy; y++ {
				for x := 0; x < gx; x++ {
					idx := (z*gy+y)*gx + x
					if ref.IsSolid(x, y, z) {
						continue
					}
					var f [lbm.Q]float32
					ref.Gather(&f, x, y, z)
					rho, ux, uy, uz := lbm.Moments(&f)
					if den[idx] != rho {
						t.Fatalf("grid %v: density mismatch at (%d,%d,%d): %v != %v",
							g, x, y, z, den[idx], rho)
					}
					if vel[idx] != (vecmath.Vec3{ux, uy, uz}) {
						t.Fatalf("grid %v: velocity mismatch at (%d,%d,%d): %v != %v",
							g, x, y, z, vel[idx], vecmath.Vec3{ux, uy, uz})
					}
				}
			}
		}
	}
}

func TestParallelMatchesSerialCavity(t *testing.T) {
	// Lid-driven cavity: moving lid on +y, walls elsewhere.
	cfg := Config{
		Global: [3]int{16, 16, 8},
		Tau:    0.8,
	}
	for f := range cfg.Faces {
		cfg.Faces[f] = lbm.FaceSpec{Type: lbm.Wall}
	}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.MovingWall, U: vecmath.Vec3{0.05, 0, 0}}
	assertMatchesSerial(t, cfg, 15, []sched.NodeGrid{
		{PX: 1, PY: 1, PZ: 1},
		{PX: 2, PY: 1, PZ: 1},
		{PX: 2, PY: 2, PZ: 1},
		{PX: 2, PY: 2, PZ: 2},
		{PX: 4, PY: 2, PZ: 1},
		{PX: 3, PY: 1, PZ: 2},
	})
}

func TestParallelMatchesSerialPeriodicTaylorGreen(t *testing.T) {
	// Fully periodic Taylor-Green-like initial condition exercises the
	// wrap exchange between border nodes.
	cfg := Config{
		Global: [3]int{16, 12, 8},
		Tau:    0.7,
		InitState: func(x, y, z int) (float32, vecmath.Vec3) {
			ux := 0.03 * float32(math.Sin(2*math.Pi*float64(x)/16)*math.Cos(2*math.Pi*float64(y)/12))
			uy := -0.03 * float32(math.Cos(2*math.Pi*float64(x)/16)*math.Sin(2*math.Pi*float64(y)/12))
			return 1, vecmath.Vec3{ux, uy, 0}
		},
	}
	assertMatchesSerial(t, cfg, 12, []sched.NodeGrid{
		{PX: 2, PY: 1, PZ: 1},
		{PX: 2, PY: 2, PZ: 1},
		{PX: 4, PY: 1, PZ: 1},
		{PX: 2, PY: 2, PZ: 2},
	})
}

func TestParallelMatchesSerialObstacleAcrossBorder(t *testing.T) {
	// A solid block straddling the node boundary of a 2x2 grid, in a
	// wind-tunnel configuration (inlet/outflow in x, walls in y/z).
	cfg := Config{
		Global: [3]int{20, 16, 8},
		Tau:    0.8,
		Geometry: func(x, y, z int) bool {
			return x >= 8 && x < 12 && y >= 6 && y < 10 && z < 5
		},
	}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.04, 0, 0}}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Wall}
	assertMatchesSerial(t, cfg, 15, []sched.NodeGrid{
		{PX: 2, PY: 2, PZ: 1},
		{PX: 2, PY: 2, PZ: 2},
	})
}

func TestParallelMatchesSerialMRT(t *testing.T) {
	cfg := Config{
		Global: [3]int{12, 12, 6},
		Tau:    0.6,
		UseMRT: true,
		Force:  vecmath.Vec3{1e-5, 0, 0},
	}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Wall}
	assertMatchesSerial(t, cfg, 10, []sched.NodeGrid{
		{PX: 2, PY: 2, PZ: 1},
		{PX: 3, PY: 2, PZ: 1},
	})
}

func TestMassConservedAcrossNodes(t *testing.T) {
	cfg := Config{
		Global: [3]int{16, 16, 16},
		Grid:   sched.NodeGrid{PX: 2, PY: 2, PZ: 2},
		Tau:    0.8,
		InitState: func(x, y, z int) (float32, vecmath.Vec3) {
			return 1, vecmath.Vec3{
				0.02 * float32(math.Sin(2*math.Pi*float64(y)/16)),
				0,
				0.02 * float32(math.Cos(2*math.Pi*float64(x)/16)),
			}
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0 := sim.TotalMass()
	sim.Run(40)
	m1 := sim.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-5 {
		t.Errorf("mass drifted %v -> %v (%.2e)", m0, m1, rel)
	}
}

func TestBorderMessageSizes(t *testing.T) {
	// Section 4.3: a node sends 5*N^2 floats to an axial neighbor (plus
	// the ghost-column floats for the higher dimensions).
	const N = 8
	cfg := Config{
		Global: [3]int{2 * N, N, N},
		Grid:   sched.NodeGrid{PX: 2, PY: 1, PZ: 1},
		Tau:    0.8,
	}
	// Walls in x so only the interior border is exchanged (periodic
	// faces would add a wrap exchange).
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Wall}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2)
	stats := sim.MPIStats()
	// Each step each node sends one x-border of 5*N*N floats.
	wantPerStep := int64(5 * N * N)
	for r, st := range stats {
		if st.MessagesSent != 2 {
			t.Errorf("rank %d sent %d messages, want 2", r, st.MessagesSent)
		}
		if st.FloatsSent != 2*wantPerStep {
			t.Errorf("rank %d sent %d floats, want %d", r, st.FloatsSent, 2*wantPerStep)
		}
	}
}

func TestRunIsResumable(t *testing.T) {
	// Run(5) twice must equal Run(10) once.
	mk := func() *Sim {
		cfg := Config{
			Global: [3]int{12, 12, 6},
			Grid:   sched.NodeGrid{PX: 2, PY: 2, PZ: 1},
			Tau:    0.8,
			InitState: func(x, y, z int) (float32, vecmath.Vec3) {
				return 1, vecmath.Vec3{0.02 * float32(math.Sin(2*math.Pi*float64(y)/12)), 0, 0}
			},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk()
	a.Run(5)
	a.Run(5)
	b := mk()
	b.Run(10)
	da, db := a.GatherDensity(), b.GatherDensity()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("resumed run diverged at %d: %v != %v", i, da[i], db[i])
		}
	}
	if a.Steps() != 10 {
		t.Errorf("steps = %d", a.Steps())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Global: [3]int{8, 8, 8}, Grid: sched.NodeGrid{}},
		{Global: [3]int{0, 8, 8}, Grid: sched.NodeGrid{PX: 1, PY: 1, PZ: 1}},
		{Global: [3]int{2, 8, 8}, Grid: sched.NodeGrid{PX: 4, PY: 1, PZ: 1}, Tau: 0.8},
	}
	for i, cfg := range bad {
		cfg.Tau = 0.8
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestBlocksTileGlobalDomain(t *testing.T) {
	f := func(a, b, c, gp uint8) bool {
		g := [3]int{int(a%12) + 4, int(b%12) + 4, int(c%12) + 4}
		grid := sched.Arrange3D(int(gp%8) + 1)
		if grid.PX > g[0] || grid.PY > g[1] || grid.PZ > g[2] {
			return true
		}
		sim, err := New(Config{Global: g, Grid: grid, Tau: 0.8})
		if err != nil {
			return false
		}
		covered := make([]int, g[0]*g[1]*g[2])
		for _, blk := range sim.Blocks() {
			for z := blk.Z0; z < blk.Z0+blk.NZ; z++ {
				for y := blk.Y0; y < blk.Y0+blk.NY; y++ {
					for x := blk.X0; x < blk.X0+blk.NX; x++ {
						covered[(z*g[1]+y)*g[0]+x]++
					}
				}
			}
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Package cluster implements the parallel LBM of Section 4.3: the global
// lattice is decomposed into 3D blocks, one per node; each simulation
// step the nodes exchange the post-collision velocity distributions at
// their sub-domain borders and advance their block. Exchange proceeds
// dimension by dimension (x, then y including the freshly received x
// ghosts, then z) so that data bound for second-nearest (diagonal)
// neighbors travel indirectly in two axial hops, exactly the simplified
// communication pattern of Figure 7. Nodes are goroutines communicating
// through package mpi; each node may compute its block on the CPU
// reference implementation or on a simulated GPU (package lbmgpu via the
// Node interface).
package cluster

import (
	"fmt"
	"time"

	"gpucluster/internal/lbm"
	"gpucluster/internal/mpi"
	"gpucluster/internal/sched"
	"gpucluster/internal/vecmath"
)

// Node is one rank's compute backend. The state held between Step calls
// is the post-collision distribution field of the node's block.
type Node interface {
	// Step advances the block one time step. For each dimension it must
	// fill the local (boundary-condition) ghost planes and then invoke
	// exchange(dim), which performs the cluster border exchange for
	// Ghost faces; afterwards it streams and collides.
	Step(exchange func(dim int))
	// PackBorder returns the outgoing border payload for a face.
	PackBorder(dim, dir int) []float32
	// UnpackGhost stores a received payload into a ghost plane.
	UnpackGhost(dim, dir int, data []float32)
	// DensityField returns the interior density field, x-fastest.
	DensityField() []float32
	// VelocityField returns the interior velocity field, x-fastest.
	VelocityField() []vecmath.Vec3
	// TotalMass returns the block's fluid mass.
	TotalMass() float64
}

// Config describes a parallel run.
type Config struct {
	// Global is the global lattice size {NX, NY, NZ}.
	Global [3]int
	// Grid arranges the nodes; Grid.Size() ranks are used.
	Grid sched.NodeGrid
	// Tau is the BGK relaxation time.
	Tau float32
	// Faces are the global domain boundary conditions.
	Faces [lbm.NumFaces]lbm.FaceSpec
	// Geometry marks solid cells in global coordinates; nil means no
	// obstacles.
	Geometry func(x, y, z int) bool
	// Force is a uniform body-force acceleration.
	Force vecmath.Vec3
	// UseMRT selects the MRT collision operator.
	UseMRT bool
	// NewNode builds the per-rank backend from its configured
	// sub-lattice; nil selects the CPU backend.
	NewNode func(rank int, sub *lbm.Lattice) (Node, error)
	// InitState optionally overrides the uniform initial condition with
	// a per-cell equilibrium state in global coordinates.
	InitState func(x, y, z int) (rho float32, u vecmath.Vec3)
	// Timeout is the MPI watchdog (default 30s).
	Timeout time.Duration
}

// ApplyInitState sets a lattice's cells to per-cell equilibrium states;
// offX/offY/offZ translate local to global coordinates. Exported so the
// serial reference in tests and examples can share the exact float path.
func ApplyInitState(l *lbm.Lattice, offX, offY, offZ int,
	state func(x, y, z int) (float32, vecmath.Vec3)) {
	var f [lbm.Q]float32
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				rho, u := state(offX+x, offY+y, offZ+z)
				lbm.Feq(&f, rho, u[0], u[1], u[2])
				l.Scatter(&f, x, y, z)
				r, _, _, _ := lbm.Moments(&f)
				l.Rho[l.Idx(x, y, z)] = r
			}
		}
	}
}

// Block is one rank's sub-domain placement in the global lattice.
type Block struct {
	Rank       int
	X0, Y0, Z0 int
	NX, NY, NZ int
}

// Decompose splits global extent g over p nodes as evenly as possible;
// returns per-node offsets and sizes. The first (g mod p) nodes get one
// extra cell.
func Decompose(g, p int) (offsets, sizes []int) {
	offsets = make([]int, p)
	sizes = make([]int, p)
	base := g / p
	rem := g % p
	off := 0
	for i := 0; i < p; i++ {
		sz := base
		if i < rem {
			sz++
		}
		offsets[i] = off
		sizes[i] = sz
		off += sz
	}
	return
}

// Sim is a parallel LBM simulation: persistent per-rank blocks plus the
// message-passing world that connects them.
type Sim struct {
	cfg    Config
	blocks []Block
	nodes  []Node
	world  *mpi.World
	steps  int
}

// New validates the configuration, builds every rank's sub-lattice
// (boundary conditions, geometry, ghost solids) and backend, and returns
// a ready simulation.
func New(cfg Config) (*Sim, error) {
	if !cfg.Grid.Valid() {
		return nil, fmt.Errorf("cluster: invalid node grid %v", cfg.Grid)
	}
	for d := 0; d < 3; d++ {
		if cfg.Global[d] <= 0 {
			return nil, fmt.Errorf("cluster: invalid global size %v", cfg.Global)
		}
	}
	p := [3]int{cfg.Grid.PX, cfg.Grid.PY, cfg.Grid.PZ}
	for d := 0; d < 3; d++ {
		if cfg.Global[d] < p[d] {
			return nil, fmt.Errorf("cluster: %d nodes along dim %d exceed %d cells",
				p[d], d, cfg.Global[d])
		}
	}
	size := cfg.Grid.Size()
	xo, xs := Decompose(cfg.Global[0], cfg.Grid.PX)
	yo, ys := Decompose(cfg.Global[1], cfg.Grid.PY)
	zo, zs := Decompose(cfg.Global[2], cfg.Grid.PZ)

	s := &Sim{
		cfg:    cfg,
		blocks: make([]Block, size),
		nodes:  make([]Node, size),
	}
	for r := 0; r < size; r++ {
		i, j, k := cfg.Grid.Coords(r)
		blk := Block{Rank: r, X0: xo[i], Y0: yo[j], Z0: zo[k], NX: xs[i], NY: ys[j], NZ: zs[k]}
		s.blocks[r] = blk

		sub := lbm.New(blk.NX, blk.NY, blk.NZ, cfg.Tau)
		sub.Force = cfg.Force
		if cfg.UseMRT {
			sub.Collision = lbm.NewMRT(cfg.Tau)
		}
		s.configureFaces(sub, i, j, k)
		s.applyGeometry(sub, blk)
		sub.Init(1, vecmath.Vec3{})
		if cfg.InitState != nil {
			ApplyInitState(sub, blk.X0, blk.Y0, blk.Z0, cfg.InitState)
		}

		var node Node
		var err error
		if cfg.NewNode != nil {
			node, err = cfg.NewNode(r, sub)
			if err != nil {
				return nil, fmt.Errorf("cluster: backend for rank %d: %w", r, err)
			}
		} else {
			node = &CPUNode{L: sub}
		}
		s.nodes[r] = node
	}
	opts := []mpi.Option{}
	if cfg.Timeout > 0 {
		opts = append(opts, mpi.WithTimeout(cfg.Timeout))
	}
	s.world = mpi.NewWorld(size, opts...)
	return s, nil
}

// configureFaces assigns each sub-lattice face: interior faces (and
// periodic wrap faces when a dimension is split) become Ghost, exterior
// faces inherit the global boundary condition.
func (s *Sim) configureFaces(sub *lbm.Lattice, i, j, k int) {
	cfg := s.cfg
	coord := [3]int{i, j, k}
	extent := [3]int{cfg.Grid.PX, cfg.Grid.PY, cfg.Grid.PZ}
	for dim := 0; dim < 3; dim++ {
		for side := 0; side < 2; side++ {
			face := 2*dim + side
			global := cfg.Faces[face]
			interior := (side == 0 && coord[dim] > 0) || (side == 1 && coord[dim] < extent[dim]-1)
			splitPeriodic := global.Type == lbm.Periodic && extent[dim] > 1
			if interior || splitPeriodic {
				sub.Faces[face] = lbm.FaceSpec{Type: lbm.Ghost}
			} else {
				sub.Faces[face] = global
			}
		}
	}
}

// applyGeometry marks solid cells, including ghost cells that map to
// valid (or periodically wrapped) global coordinates, so that obstacles
// crossing sub-domain borders bounce back correctly on both sides.
func (s *Sim) applyGeometry(sub *lbm.Lattice, blk Block) {
	if s.cfg.Geometry == nil {
		return
	}
	wrap := func(v, n int, periodic bool) (int, bool) {
		if v >= 0 && v < n {
			return v, true
		}
		if !periodic {
			return 0, false
		}
		return (v%n + n) % n, true
	}
	perX := s.cfg.Faces[lbm.FaceXNeg].Type == lbm.Periodic
	perY := s.cfg.Faces[lbm.FaceYNeg].Type == lbm.Periodic
	perZ := s.cfg.Faces[lbm.FaceZNeg].Type == lbm.Periodic
	for z := -1; z <= blk.NZ; z++ {
		gz, okz := wrap(blk.Z0+z, s.cfg.Global[2], perZ)
		for y := -1; y <= blk.NY; y++ {
			gy, oky := wrap(blk.Y0+y, s.cfg.Global[1], perY)
			for x := -1; x <= blk.NX; x++ {
				gx, okx := wrap(blk.X0+x, s.cfg.Global[0], perX)
				if okx && oky && okz && s.cfg.Geometry(gx, gy, gz) {
					sub.Solid[sub.Idx(x, y, z)] = true
				}
			}
		}
	}
}

// neighbor returns the rank adjacent to (i,j,k) on the dim/dir side, or
// -1 when none exists (accounting for periodic wrap on split dimensions).
func (s *Sim) neighbor(i, j, k, dim, dir int) int {
	g := s.cfg.Grid
	c := [3]int{i, j, k}
	extent := [3]int{g.PX, g.PY, g.PZ}
	c[dim] += dir
	if c[dim] < 0 || c[dim] >= extent[dim] {
		if s.cfg.Faces[2*dim].Type != lbm.Periodic || extent[dim] == 1 {
			return -1
		}
		c[dim] = (c[dim] + extent[dim]) % extent[dim]
	}
	return g.Rank(c[0], c[1], c[2])
}

// Run advances the simulation the given number of steps, spawning one
// goroutine per rank.
func (s *Sim) Run(steps int) {
	s.world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		i, j, k := s.cfg.Grid.Coords(r)
		node := s.nodes[r]
		negN := [3]int{s.neighbor(i, j, k, 0, -1), s.neighbor(i, j, k, 1, -1), s.neighbor(i, j, k, 2, -1)}
		posN := [3]int{s.neighbor(i, j, k, 0, +1), s.neighbor(i, j, k, 1, +1), s.neighbor(i, j, k, 2, +1)}
		exchange := func(dim int) {
			tagPos := 2 * dim // payload traveling in +dim direction
			tagNeg := 2*dim + 1
			if posN[dim] >= 0 {
				c.Send(posN[dim], tagPos, node.PackBorder(dim, +1))
			}
			if negN[dim] >= 0 {
				c.Send(negN[dim], tagNeg, node.PackBorder(dim, -1))
			}
			if negN[dim] >= 0 {
				node.UnpackGhost(dim, -1, c.Recv(negN[dim], tagPos))
			}
			if posN[dim] >= 0 {
				node.UnpackGhost(dim, +1, c.Recv(posN[dim], tagNeg))
			}
		}
		for st := 0; st < steps; st++ {
			node.Step(exchange)
		}
	})
	s.steps += steps
}

// Steps returns the number of completed steps.
func (s *Sim) Steps() int { return s.steps }

// Blocks returns the decomposition.
func (s *Sim) Blocks() []Block { return s.blocks }

// NodeBackend returns rank r's backend (for inspection in tests).
func (s *Sim) NodeBackend(r int) Node { return s.nodes[r] }

// GatherDensity assembles the global density field, x-fastest.
func (s *Sim) GatherDensity() []float32 {
	out := make([]float32, s.cfg.Global[0]*s.cfg.Global[1]*s.cfg.Global[2])
	for r, blk := range s.blocks {
		field := s.nodes[r].DensityField()
		s.scatterBlock(blk, func(gidx, lidx int) { out[gidx] = field[lidx] })
	}
	return out
}

// GatherVelocity assembles the global velocity field, x-fastest.
func (s *Sim) GatherVelocity() []vecmath.Vec3 {
	out := make([]vecmath.Vec3, s.cfg.Global[0]*s.cfg.Global[1]*s.cfg.Global[2])
	for r, blk := range s.blocks {
		field := s.nodes[r].VelocityField()
		s.scatterBlock(blk, func(gidx, lidx int) { out[gidx] = field[lidx] })
	}
	return out
}

func (s *Sim) scatterBlock(blk Block, set func(gidx, lidx int)) {
	gx, gy := s.cfg.Global[0], s.cfg.Global[1]
	l := 0
	for z := 0; z < blk.NZ; z++ {
		for y := 0; y < blk.NY; y++ {
			g := ((blk.Z0+z)*gy+(blk.Y0+y))*gx + blk.X0
			for x := 0; x < blk.NX; x++ {
				set(g+x, l)
				l++
			}
		}
	}
}

// TotalMass sums fluid mass over all blocks.
func (s *Sim) TotalMass() float64 {
	var m float64
	for _, n := range s.nodes {
		m += n.TotalMass()
	}
	return m
}

// MPIStats returns per-rank traffic statistics.
func (s *Sim) MPIStats() []mpi.RankStats { return s.world.Stats() }

// CPUNode is the reference backend: it computes its block with the
// serial CPU implementation of package lbm.
type CPUNode struct {
	L *lbm.Lattice
}

// Step implements Node.
func (n *CPUNode) Step(exchange func(dim int)) {
	for dim := 0; dim < 3; dim++ {
		n.L.FillGhostDim(dim)
		exchange(dim)
	}
	n.L.Stream()
	n.L.Collide()
}

// PackBorder implements Node.
func (n *CPUNode) PackBorder(dim, dir int) []float32 { return n.L.PackBorder(dim, dir) }

// UnpackGhost implements Node.
func (n *CPUNode) UnpackGhost(dim, dir int, data []float32) { n.L.UnpackGhost(dim, dir, data) }

// DensityField implements Node.
func (n *CPUNode) DensityField() []float32 {
	out := make([]float32, n.L.Cells())
	var f [lbm.Q]float32
	i := 0
	for z := 0; z < n.L.NZ; z++ {
		for y := 0; y < n.L.NY; y++ {
			for x := 0; x < n.L.NX; x++ {
				n.L.Gather(&f, x, y, z)
				rho, _, _, _ := lbm.Moments(&f)
				out[i] = rho
				i++
			}
		}
	}
	return out
}

// VelocityField implements Node.
func (n *CPUNode) VelocityField() []vecmath.Vec3 {
	out := make([]vecmath.Vec3, n.L.Cells())
	i := 0
	for z := 0; z < n.L.NZ; z++ {
		for y := 0; y < n.L.NY; y++ {
			for x := 0; x < n.L.NX; x++ {
				out[i] = n.L.Velocity(x, y, z)
				i++
			}
		}
	}
	return out
}

// TotalMass implements Node.
func (n *CPUNode) TotalMass() float64 { return n.L.TotalMass() }

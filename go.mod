module gpucluster

go 1.23

module gpucluster

go 1.24

// CGSolver: the sparse-linear-system path of Section 6 — a Poisson
// problem discretized with P1 finite elements, solved three ways:
// serial conjugate gradients, the cluster-distributed CG with the
// matrix/vector decomposition of Figure 15, and with the matvec executed
// on a simulated GPU through indirection textures.
package main

import (
	"fmt"
	"log"
	"math"

	"gpucluster/internal/fem"
	"gpucluster/internal/gpu"
	"gpucluster/internal/mpi"
	"gpucluster/internal/sparse"
)

func main() {
	f, exact := fem.ManufacturedSolution()
	mesh := fem.NewUnitSquareMesh(24)
	sys := fem.Assemble(mesh, f)
	fmt.Printf("FEM: %d nodes, %d triangles, %d unknowns, %d nonzeros\n",
		len(mesh.Nodes), len(mesh.Tris), sys.A.Rows, sys.A.NNZ())

	// 1. Serial CG.
	u, st := sys.Solve(1e-8, 4000)
	fmt.Printf("serial CG:      %d iterations, residual %.2e, max error %.4f\n",
		st.Iterations, st.Residual, sys.MaxError(u, exact))

	// 2. Distributed CG over 4 goroutine-nodes.
	const ranks = 4
	got := make([]float32, sys.A.Rows)
	off, sz := sparse.RowPartition(sys.A.Rows, ranks)
	world := mpi.NewWorld(ranks)
	var distIters int
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		d := sparse.NewDistMatrix(sys.A, r, ranks)
		d.Setup(c)
		local, st := sparse.DistCG(c, d, sys.B[off[r]:off[r]+sz[r]], 1e-8, 4000)
		if !st.Converged {
			log.Fatalf("rank %d did not converge", r)
		}
		if r == 0 {
			distIters = st.Iterations
		}
		copy(got[off[r]:], local)
	})
	var maxDiff float64
	for i := range got {
		if d := math.Abs(float64(got[i] - u0(sys, u, i))); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("distributed CG: %d iterations on %d nodes, max |x_dist - x_serial| = %.2e\n",
		distIters, ranks, maxDiff)

	// 3. GPU matvec through indirection textures.
	dev := gpu.New(gpu.Config{TextureMemory: 128 << 20})
	gm, err := sparse.NewGPUMatVec(dev, sys.A)
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Free()
	x := make([]float32, sys.A.Cols)
	for i := range x {
		x[i] = float32(math.Sin(float64(i)))
	}
	want := sys.A.MulVec(x)
	gy, err := gm.MulVec(x)
	if err != nil {
		log.Fatal(err)
	}
	var gpuErr float64
	for i := range want {
		if d := math.Abs(float64(gy[i] - want[i])); d > gpuErr {
			gpuErr = d
		}
	}
	fmt.Printf("GPU matvec:     max |A_gpu x - A x| = %.2e (%d passes)\n", gpuErr, dev.Stats.Passes)
}

// u0 reads back the serial interior solution for unknown i.
func u0(sys *fem.System, u []float64, i int) float32 {
	return float32(u[sys.Interior[i]])
}

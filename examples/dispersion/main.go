// Dispersion: the paper's Section 5 application at laptop scale — wind
// over a synthetic Times Square district computed by the parallel LBM on
// a 2x2 GPU-node cluster, followed by tracer-particle contaminant
// transport, with Figure 12-style streamlines and a Figure 13-style
// plume projection written as PPM images.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gpucluster/internal/city"
	"gpucluster/internal/cluster"
	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/lbmgpu"
	"gpucluster/internal/sched"
	"gpucluster/internal/tracer"
	"gpucluster/internal/vecmath"
	"gpucluster/internal/vis"
)

func main() {
	// Synthetic district (91 blocks, ~850 buildings) voxelized onto a
	// modest lattice. The paper ran 480x400x80 at 3.8 m on 30 nodes;
	// here 120x80x20 at ~17 m on 4 simulated-GPU nodes.
	c := city.Generate(city.Config{})
	const nx, ny, nz = 120, 80, 20
	spacing := c.WidthM / float64(nx-20)
	vox := c.Voxelize(nx, ny, nz, spacing)
	fmt.Printf("district: %d blocks, %d buildings; lattice %dx%dx%d at %.1f m (%.1f%% solid)\n",
		c.Blocks, len(c.Buildings), nx, ny, nz, spacing, 100*vox.SolidFraction())

	cfg := cluster.Config{
		Global:   [3]int{nx, ny, nz},
		Grid:     sched.NodeGrid{PX: 2, PY: 2, PZ: 1},
		Tau:      0.8,
		Geometry: vox.Geometry(),
		NewNode: func(rank int, sub *lbm.Lattice) (cluster.Node, error) {
			dev := gpu.New(gpu.Config{
				Name:          fmt.Sprintf("node%d", rank),
				TextureMemory: 512 << 20,
			})
			return lbmgpu.New(dev, sub)
		},
	}
	// Northeasterly wind, as in the paper: inflow on the +x face.
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{-0.025, -0.008, 0}}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Outflow}

	sim, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const flowSteps = 80
	t0 := time.Now()
	sim.Run(flowSteps)
	fmt.Printf("flow: %d steps on %d GPU nodes in %v\n",
		flowSteps, cfg.Grid.Size(), time.Since(t0).Round(time.Millisecond))

	den := sim.GatherDensity()
	vel := sim.GatherVelocity()

	// Figure 12: streamlines over the footprint.
	field := &vis.VelocityField{NX: nx, NY: ny, NZ: nz, V: vel}
	var seeds []vecmath.Vec3
	for i := 1; i < 16; i++ {
		seeds = append(seeds, vecmath.Vec3{float32(nx - 3), float32(ny*i) / 16, 4})
	}
	im := vis.RenderStreamlinesTopDown(field, vox.IsSolid, seeds, 4*nx, 4*ny)
	writePPM("streamlines.ppm", im)

	// Section 5: after the flow develops, release tracer particles and
	// let them propagate along lattice links. The release site must be a
	// street cell, not inside a building — search near the upwind edge.
	// Prefer a spot with developed wind: roof level, upwind half, fluid.
	rx, ry, rz := nx-12, ny/2, nz/3
	for vox.IsSolid(rx, ry, rz) || !(vel[(rz*ny+ry)*nx+rx].Norm() >= 0.01) {
		ry++
		if ry >= ny {
			ry = 0
			rz++
			if rz >= nz {
				rz = 0
				rx--
			}
		}
	}
	cloud := tracer.NewCloud(99)
	cloud.Release(rx, ry, rz, 8000)
	probs := tracer.FromMacro(nx, ny, nz, den, vel, vox.IsSolid)
	for s := 0; s < 200; s++ {
		cloud.Step(probs)
	}
	cen := cloud.Centroid()
	uRel := vel[(rz*ny+ry)*nx+rx]
	fmt.Printf("tracer: released at (%d,%d,%d) where u=(%.3f,%.3f,%.3f); centroid after 200 steps: (%.1f, %.1f, %.1f)\n",
		rx, ry, rz, uRel[0], uRel[1], uRel[2], cen[0], cen[1], cen[2])

	// Figure 13: volume projection of the plume.
	plume := cloud.DensityGrid(nx, ny, nz)
	im2 := vis.RenderVolumeTopDown(nx, ny, nz, plume, vox.IsSolid, 4*nx, 4*ny)
	writePPM("plume.ppm", im2)
}

func writePPM(path string, im *vis.Image) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%dx%d)\n", path, im.W, im.H)
}

// Convection: the hybrid thermal LBM (HTLBM) of Section 4.1 — the MRT
// collision operator coupled to a finite-difference temperature field
// through a Boussinesq buoyancy term. A Rayleigh-Benard-style cell
// (heated floor, cooled ceiling) develops convective motion; the example
// reports the circulation strength and heat transport.
package main

import (
	"fmt"

	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

func main() {
	const nx, ny, nz = 32, 8, 16
	tau := float32(0.55) // low viscosity: the regime MRT is for
	l := lbm.New(nx, ny, nz, tau)
	l.Collision = lbm.NewMRT(tau)
	l.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	l.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Wall}
	l.Init(1, vecmath.Vec3{})

	th := lbm.NewThermal(l, 0.05, 0.5)
	th.Buoyancy = vecmath.Vec3{0, 0, 3e-3}
	th.FixedFace[lbm.FaceZNeg] = true
	th.FaceTemp[lbm.FaceZNeg] = 1 // hot floor
	th.FixedFace[lbm.FaceZPos] = true
	th.FaceTemp[lbm.FaceZPos] = 0 // cold ceiling

	// Seed a slight asymmetry so the convection roll has a direction.
	th.SetTemp(nx/4, ny/2, 1, 1.2)

	for step := 0; step < 1500; step++ {
		th.Step()
		l.Step()
		if step%300 == 299 {
			var maxW float32
			for x := 0; x < nx; x++ {
				if w := l.Velocity(x, ny/2, nz/2)[2]; w > maxW {
					maxW = w
				}
			}
			fmt.Printf("step %4d: mean T %.4f, max upward velocity %.5f\n",
				step+1, th.MeanTemp(), maxW)
		}
	}

	// Convection signature: rising plumes somewhere, sinking elsewhere.
	var up, down float32
	for x := 0; x < nx; x++ {
		w := l.Velocity(x, ny/2, nz/2)[2]
		if w > up {
			up = w
		}
		if w < down {
			down = w
		}
	}
	fmt.Printf("circulation: max rise %.5f, max sink %.5f\n", up, down)
	if up > 1e-4 && down < -1e-4 {
		fmt.Println("convection cell established (HTLBM: MRT + thermal coupling)")
	} else {
		fmt.Println("WARNING: no convection detected")
	}
}

// Heat3D: an explicit finite-difference PDE on the cluster — the
// structured-grid explicit-method class Section 6 of the paper maps onto
// the GPU cluster. A 3D heat pulse diffuses across 4 goroutine-nodes
// with proxy-plane exchange; the decay of a sine mode is checked against
// the discrete dispersion relation, and a 2D GPU version runs the same
// stencil as a fragment program.
package main

import (
	"fmt"
	"log"
	"math"

	"gpucluster/internal/gpu"
	"gpucluster/internal/pde"
)

func main() {
	const nx, ny, nz = 48, 48, 48
	alpha := float32(0.12)
	initVal := func(x, y, z int) float32 {
		return float32(math.Sin(2 * math.Pi * float64(x) / nx))
	}

	const steps = 150
	field := pde.ParallelHeat3D(nx, ny, nz, alpha, 4, steps, initVal)

	// Measure the surviving amplitude of the sine mode.
	k := 2 * math.Pi / nx
	var amp float64
	for x := 0; x < nx; x++ {
		amp += float64(field[(nz/2*ny+ny/2)*nx+x]) * math.Sin(k*float64(x))
	}
	amp = 2 * amp / nx
	want := math.Pow(pde.DecayRate(float64(alpha), nx, 1), steps)
	fmt.Printf("4-node explicit heat equation, %dx%dx%d, %d steps\n", nx, ny, nz, steps)
	fmt.Printf("sine-mode amplitude: measured %.6f, analytic %.6f (%.3f%% off)\n",
		amp, want, 100*math.Abs(amp-want)/want)
	if math.Abs(amp-want)/want > 0.02 {
		log.Fatal("decay does not match the dispersion relation")
	}

	// The same stencil as a GPU fragment program (2D).
	dev := gpu.New(gpu.Config{TextureMemory: 64 << 20})
	g, err := pde.NewGPUHeat2D(dev, 64, 64, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	u := make([]float32, 64*64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			u[y*64+x] = float32(math.Sin(2 * math.Pi * float64(x) / 64))
		}
	}
	if err := g.Upload(u); err != nil {
		log.Fatal(err)
	}
	for s := 0; s < 100; s++ {
		if err := g.Step(); err != nil {
			log.Fatal(err)
		}
	}
	out, err := g.Download()
	if err != nil {
		log.Fatal(err)
	}
	var gamp float64
	kg := 2 * math.Pi / 64
	for x := 0; x < 64; x++ {
		gamp += float64(out[32*64+x]) * math.Sin(kg*float64(x))
	}
	gamp = 2 * gamp / 64
	gwant := math.Pow(pde.DecayRate(0.2, 64, 1), 100)
	fmt.Printf("GPU 2D stencil (100 passes): measured %.6f, analytic %.6f\n", gamp, gwant)
	fmt.Printf("GPU ran %d passes over %d fragments\n", dev.Stats.Passes, dev.Stats.Fragments)
}

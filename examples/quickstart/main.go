// Quickstart: the smallest end-to-end use of the library — a lid-driven
// cavity flow computed by the D3Q19 LBM on one simulated GeForce FX 5800
// Ultra (Section 4.2 of the paper), checked against the CPU reference.
package main

import (
	"fmt"
	"log"

	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/lbmgpu"
	"gpucluster/internal/vecmath"
)

func main() {
	// A 24^3 cavity: no-slip walls everywhere, the top lid sliding in +x.
	const n = 24
	configure := func(l *lbm.Lattice) {
		for f := range l.Faces {
			l.Faces[f] = lbm.FaceSpec{Type: lbm.Wall}
		}
		l.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.MovingWall, U: vecmath.Vec3{0.1, 0, 0}}
	}

	// GPU path: build the lattice, hand it to the GPU simulator.
	host := lbm.New(n, n, n, 0.6)
	configure(host)
	host.Init(1, vecmath.Vec3{})
	dev := gpu.New(gpu.GeForceFX5800Ultra())
	sim, err := lbmgpu.New(dev, host)
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		sim.Step(func(int) {}) // single GPU: no cluster exchange
	}

	// CPU reference for comparison.
	ref := lbm.New(n, n, n, 0.6)
	configure(ref)
	ref.Init(1, vecmath.Vec3{})
	for step := 0; step < 200; step++ {
		ref.Step()
	}

	vel := sim.VelocityField()
	center := vel[(n/2*n+n/2)*n+n/2]
	fmt.Printf("after 200 steps, center velocity (GPU): (%.5f, %.5f, %.5f)\n",
		center[0], center[1], center[2])
	refC := ref.Velocity(n/2, n/2, n/2)
	fmt.Printf("CPU reference:                          (%.5f, %.5f, %.5f)\n",
		refC[0], refC[1], refC[2])
	if center != refC {
		log.Fatal("GPU and CPU disagree!")
	}
	fmt.Printf("GPU executed %d render passes, used %.1f MB of texture memory\n",
		dev.Stats.Passes, float64(dev.UsedMemory())/(1<<20))
	fmt.Printf("bus traffic: %.1f MB down, %.1f MB up (AGP asymmetry: up is the slow path)\n",
		float64(dev.Bus().Down.Bytes)/(1<<20), float64(dev.Bus().Up.Bytes)/(1<<20))
}

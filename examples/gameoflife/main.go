// GameOfLife: cellular automata on the GPU cluster — the first extra
// computation class Section 6 discusses. A glider gun board advances on
// the simulated GPU (one render pass per generation) and, independently,
// strip-decomposed across 4 goroutine-nodes; both must agree with the
// serial CPU automaton.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpucluster/internal/ca"
	"gpucluster/internal/gpu"
)

func main() {
	const w, h, generations = 64, 48, 100
	seedBoard := func() *ca.Grid {
		g := ca.NewGrid(w, h)
		rng := rand.New(rand.NewSource(1))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if rng.Float64() < 0.3 {
					g.Set(x, y, 1)
				}
			}
		}
		return g
	}

	// Serial reference.
	serial := seedBoard()
	for i := 0; i < generations; i++ {
		serial.Step()
	}
	fmt.Printf("serial: %d generations, population %d\n", generations, serial.Population())

	// GPU: one fragment-program pass per generation.
	dev := gpu.New(gpu.Config{TextureMemory: 32 << 20})
	gg, err := ca.NewGPUGrid(dev, w, h)
	if err != nil {
		log.Fatal(err)
	}
	if err := gg.Upload(seedBoard()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < generations; i++ {
		if err := gg.Step(); err != nil {
			log.Fatal(err)
		}
	}
	gpuBoard, err := gg.Download()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU:    population %d after %d render passes\n",
		gpuBoard.Population(), dev.Stats.Passes)
	if gpuBoard.Population() != serial.Population() {
		log.Fatal("GPU diverged from serial")
	}

	// Cluster: 4 strips with ghost-row exchange per generation.
	par := ca.ParallelSteps(seedBoard(), 4, generations)
	fmt.Printf("4-node: population %d\n", par.Population())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if par.Alive(x, y) != serial.Alive(x, y) {
				log.Fatalf("cluster diverged at (%d,%d)", x, y)
			}
		}
	}
	fmt.Println("GPU and cluster boards match the serial automaton exactly")
}
